// TraceBuffer: an in-memory TraceSink that records one ordered op stream per
// thread, coalescing adjacent compatible ops to keep traces compact.
//
// Attach one to a Machine, run an algorithm, then hand the streams to the
// simulator's TraceCores (sim/system.hpp) for cycle-level replay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace tlm::trace {

struct TraceSummary {
  std::uint64_t reads = 0, writes = 0, computes = 0, barriers = 0;
  std::uint64_t dmas = 0;
  std::uint64_t read_bytes = 0, write_bytes = 0, dma_bytes = 0;
  double compute_ops = 0;
  std::uint64_t total_ops() const {
    return reads + writes + computes + barriers + dmas;
  }
};

class TraceBuffer final : public TraceSink {
 public:
  explicit TraceBuffer(std::size_t threads);

  void on_read(std::size_t thread, std::uint64_t vaddr,
               std::uint64_t bytes) override;
  void on_write(std::size_t thread, std::uint64_t vaddr,
                std::uint64_t bytes) override;
  void on_compute(std::size_t thread, double ops) override;
  void on_barrier(std::size_t thread, std::uint64_t barrier_id) override;
  void on_dma(std::size_t thread, std::uint64_t dst_vaddr,
              std::uint64_t src_vaddr, std::uint64_t bytes) override;

  std::size_t threads() const { return streams_.size(); }
  const std::vector<TraceOp>& stream(std::size_t thread) const {
    return streams_.at(thread);
  }
  const std::vector<std::vector<TraceOp>>& streams() const { return streams_; }

  TraceSummary summary() const;
  void clear();

  // Human-readable digest (op counts per thread) for logs and tests.
  std::string describe() const;

 private:
  void append(std::size_t thread, TraceOp op);

  std::vector<std::vector<TraceOp>> streams_;
};

}  // namespace tlm::trace
