// TraceBuffer: an in-memory TraceSink that records one ordered op stream per
// thread, coalescing adjacent compatible ops to keep traces compact.
//
// Attach one to a Machine, run an algorithm, then hand the streams to the
// simulator's TraceCores (sim/system.hpp) for cycle-level replay. For runs
// too large to hold in RAM, MappedLog (trace/mapped_log.hpp) is the
// out-of-core sink with the identical coalescing contract, and ShardedReplay
// (trace/replay.hpp) loads its logs back as a TraceSource.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace tlm::trace {

struct TraceSummary {
  std::uint64_t reads = 0, writes = 0, computes = 0, barriers = 0;
  std::uint64_t dmas = 0;
  std::uint64_t read_bytes = 0, write_bytes = 0, dma_bytes = 0;
  double compute_ops = 0;
  std::uint64_t total_ops() const {
    return reads + writes + computes + barriers + dmas;
  }
  void note(const TraceOp& op, bool coalesced);
};

// Attempts to fold `op` into `tail` (the thread's most recent record):
// adjacent compute segments merge, contiguous read/write bursts of the same
// kind extend, contiguous DmaCopy descriptors with matching src/dst strides
// extend. Returns true when `tail` absorbed the op. This single function IS
// the coalescing contract — every sink (TraceBuffer, MappedLog) and every
// loader routes through it so capture and replay agree bit for bit.
bool try_coalesce(TraceOp& tail, const TraceOp& op);

// Read-side view of a captured trace: exactly the per-thread coalesced op
// streams sim::System replays. Implemented by TraceBuffer (in-RAM) and
// ShardedReplay (decoded from memory-mapped logs).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual std::size_t threads() const = 0;
  virtual const std::vector<TraceOp>& stream(std::size_t thread) const = 0;
};

class TraceBuffer final : public TraceSink, public TraceSource {
 public:
  explicit TraceBuffer(std::size_t threads);

  void on_read(std::size_t thread, std::uint64_t vaddr,
               std::uint64_t bytes) override;
  void on_write(std::size_t thread, std::uint64_t vaddr,
                std::uint64_t bytes) override;
  void on_compute(std::size_t thread, double ops) override;
  void on_barrier(std::size_t thread, std::uint64_t barrier_id) override;
  void on_dma(std::size_t thread, std::uint64_t dst_vaddr,
              std::uint64_t src_vaddr, std::uint64_t bytes) override;

  std::size_t threads() const override { return streams_.size(); }
  const std::vector<TraceOp>& stream(std::size_t thread) const override {
    return streams_.at(thread);
  }
  const std::vector<std::vector<TraceOp>>& streams() const { return streams_; }

  // O(1): maintained incrementally as ops arrive (a billion-op capture must
  // not be re-scanned to answer "how many ops").
  const TraceSummary& summary() const { return summary_; }

  // Resets the buffer for reuse: drops every stream AND the incremental
  // summary/coalescing state, so a subsequent op can neither merge into a
  // stale predecessor nor inherit stale totals.
  void clear();

  // Human-readable digest (op counts per thread) for logs and tests.
  std::string describe() const;

 private:
  void append(std::size_t thread, TraceOp op);

  std::vector<std::vector<TraceOp>> streams_;
  TraceSummary summary_;
};

}  // namespace tlm::trace
