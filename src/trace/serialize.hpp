// Binary trace files: capture once, replay many — the workflow SST users
// have with Ariel tracing. The format is a small versioned header followed
// by raw per-thread op arrays (TraceOp is a POD).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/capture.hpp"

namespace tlm::trace {

// Writes `tb` to `os` / reads a buffer back. Throws std::invalid_argument
// on malformed input (bad magic, version, or truncated stream).
void save_trace(const TraceBuffer& tb, std::ostream& os);
TraceBuffer load_trace(std::istream& is);

// File convenience wrappers; throw on I/O failure.
void save_trace_file(const TraceBuffer& tb, const std::string& path);
TraceBuffer load_trace_file(const std::string& path);

}  // namespace tlm::trace
