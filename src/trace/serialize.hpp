// Binary trace files: capture once, replay many — the workflow SST users
// have with Ariel tracing. Two on-disk op encodings are supported:
//
//  * v2 — the original format: small versioned header + raw per-thread
//    TraceOp POD arrays (40 B/op). Still written on request and always
//    loadable.
//  * v3 — compact varint/delta wire format (typically 3–6 B/op): vaddrs are
//    zigzag-delta-coded against the end of the previous burst (coalesced
//    runs therefore encode a 1-byte zero delta), burst lengths and barrier
//    ids are LEB128 varints, and compute amounts are byte-swapped doubles
//    (mantissa-light values varint short). The same wire codec backs the
//    out-of-core MappedLog sink (trace/mapped_log.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/capture.hpp"

namespace tlm::trace {

inline constexpr std::uint32_t kTraceVersionPod = 2;
inline constexpr std::uint32_t kTraceVersionVarint = 3;
inline constexpr std::uint32_t kTraceVersionLatest = kTraceVersionVarint;

// Writes `tb` to `os` / reads a buffer back. Throws std::invalid_argument
// on malformed input (bad magic, version, or truncated stream). `version`
// selects the op encoding; both versions load transparently.
void save_trace(const TraceBuffer& tb, std::ostream& os,
                std::uint32_t version = kTraceVersionLatest);
TraceBuffer load_trace(std::istream& is);

// File convenience wrappers; throw on I/O failure.
void save_trace_file(const TraceBuffer& tb, const std::string& path,
                     std::uint32_t version = kTraceVersionLatest);
TraceBuffer load_trace_file(const std::string& path);

// The v3 wire codec, exposed so MappedLog/ShardedReplay append and decode
// the identical byte stream the file serializer produces.
namespace wire {

// LEB128 unsigned varint (1 byte for < 128, 10 bytes worst case).
void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v);
// Returns false when [*p, end) truncates mid-varint; on success advances *p.
bool get_uvarint(const std::uint8_t** p, const std::uint8_t* end,
                 std::uint64_t* v);

// Per-stream delta state. Deltas are computed with wrapping u64 arithmetic,
// so any address pair — including a max-u64 jump that sign-wraps the zigzag
// intermediate — round-trips exactly.
struct Codec {
  std::uint64_t prev_end = 0;      // end of the last Read/Write/DmaCopy dst
  std::uint64_t prev_src_end = 0;  // end of the last DmaCopy src
};

// Appends the v3 encoding of `op` to `out`. Records are at most
// kMaxRecordBytes long.
inline constexpr std::size_t kMaxRecordBytes = 1 + 3 * 10;
void encode_op(std::vector<std::uint8_t>& out, Codec& c, const TraceOp& op);

// Decodes one record from [*p, end). Returns false (without advancing *p)
// when the range holds only a truncated record — the recovery signal for
// crash-cut logs. Throws on a corrupt op tag.
bool decode_op(const std::uint8_t** p, const std::uint8_t* end, Codec& c,
               TraceOp* op);

}  // namespace wire

}  // namespace tlm::trace
