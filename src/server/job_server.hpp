// JobServer — a long-lived multi-tenant runtime over one shared Machine.
//
// Tenants register with a near-memory quota, then submit jobs: ordered
// lists of phases that run on the shared ThreadPool. Nobody owns run_spmd
// anymore — the server is the single orchestrator, and it schedules one
// phase at a time, round-robin across tenants, with that tenant's
// TenantArena installed as the quota gate for the duration of the phase.
//
// The coordination core follows the combining idiom (cf. the Synch
// framework's flat-combining objects): there is no dedicated scheduler
// thread — that would also violate the raw-thread lint rule — instead any
// client thread that calls submit()/wait()/drain() tries to become the
// combiner, drains scheduling rounds while it holds the role, and hands it
// off through the server mutex. Phases therefore execute serially, which
// is what makes per-tenant attribution exact: the combiner brackets every
// phase with Machine::totals() snapshots and charges the delta to the
// tenant that ran.
//
// Admission control: a bounded number of outstanding jobs overall and per
// tenant. An over-capacity submit does bounded deterministic backoff —
// each attempt the submitter helps drain the queues (runs up to 2^attempt
// scheduling rounds as the combiner) instead of sleeping, so backoff makes
// progress by construction; when the retry budget is exhausted with no
// capacity the job is rejected, never dropped silently.
//
// Lifecycle: an admitted job is no longer fire-and-forget. Every job
// carries a CancelToken the Machine polls at checkpoints (Stager batch
// boundaries, phase brackets); JobHandle::cancel(), shutdown(kAbort), the
// modeled-seconds deadline, and the wall-clock watchdog all deliver
// through it, so a stopped job unwinds between DMA fences with its arena
// charge reclaimed — settlement is leak-free on every path, which the
// model.tenant_leak / model.tenant_attribution checks pin down. Failed
// phases may retry (JobSpec::max_retries, from phase 0); a job that trips
// fault sites Options::quarantine_fault_trips times settles kQuarantined
// and stops consuming admission slots. DESIGN.md §15 has the state machine
// and the stated blind spots.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "scratchpad/machine.hpp"
#include "server/tenant_arena.hpp"

namespace tlm::server {

// Everything a phase body may touch. Near memory goes through `arena`
// (quota-checked); the machine reference is for instrumented operations,
// parallel_for/run_spmd, and far allocation. Library code called from a
// phase (sort::*, kmeans::*) allocates through the Machine as always — the
// installed gate charges those allocations to the tenant transparently.
struct JobContext {
  Machine& machine;
  TenantArena& arena;
};

struct JobPhase {
  std::string name;
  std::function<void(JobContext&)> fn;
};

struct JobSpec {
  std::string tenant;
  std::string name;
  std::vector<JobPhase> phases;

  // ---- lifecycle knobs (all optional) ------------------------------------
  // Bounds the job's total *modeled* seconds across its phases. Modeled
  // time is deterministic (counters + the seeded fault schedule), so the
  // same jobs expire at the same checkpoints in every run. 0 = no deadline.
  double deadline_model_s = 0;
  // Per-phase wall-clock watchdog for genuinely hung phases; overrides
  // Options::watchdog_wall_s when nonzero. Host time — inherently
  // nondeterministic, a last resort, not a scheduling deadline.
  double wall_timeout_s = 0;
  // Failed phases send the job back to phase 0 up to this many times
  // before it settles kFailed (the arena charge is reclaimed between
  // attempts). Fault-typed failures also count toward quarantine.
  std::uint32_t max_retries = 0;
};

enum class JobStatus : int {
  kQueued,
  kRunning,
  kDone,
  kFailed,    // a phase threw; error() carries the message
  kRejected,  // admission control turned it away
  kCancelled,          // JobHandle::cancel() or shutdown(kAbort)
  kDeadlineExceeded,   // modeled deadline or wall watchdog expired
  kQuarantined,        // tripped fault sites quarantine_fault_trips times
};

// Per-tenant observables, copyable snapshot (see JobServer::tenant_stats).
struct TenantStats {
  std::string tenant;
  std::uint64_t quota_bytes = 0;
  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t backoff_stalls = 0;
  std::uint64_t quota_denials = 0;
  std::uint64_t high_water_bytes = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_deadline_exceeded = 0;
  std::uint64_t jobs_quarantined = 0;
  std::uint64_t job_retries = 0;
  std::uint64_t foreign_frees = 0;
  std::uint64_t reclaimed_bytes = 0;
  std::uint64_t phases_run = 0;
  // Worst degradation-ladder level this tenant's phases drove any Stager
  // to: 0 = double-buffered, 1 = single, 2 = direct-from-far.
  int degrade_level = 0;
  // Exact attribution of the shared machine's counters to this tenant
  // (snapshot deltas around its serially-executed phases).
  PhaseStats attributed;
  StagerStats stager;
  FaultStats faults;
  // Host seconds each scheduled phase spent executing (service time, not
  // queue wait) — informational; host timing jitters with the machine load.
  std::vector<double> phase_seconds;
  // Modeled seconds per phase (the analytic time model's deterministic
  // answer) — the isolation gate's p99 input: a neighbor can only inflate
  // it by actually changing where this tenant's data lives.
  std::vector<double> phase_model_seconds;
};

class JobServer;

class JobHandle {
 public:
  JobHandle() = default;

  JobStatus status() const;
  bool done() const { return status() == JobStatus::kDone; }
  bool rejected() const { return status() == JobStatus::kRejected; }
  bool cancelled() const { return status() == JobStatus::kCancelled; }
  bool deadline_exceeded() const {
    return status() == JobStatus::kDeadlineExceeded;
  }
  bool quarantined() const { return status() == JobStatus::kQuarantined; }
  // Diagnostic message for any off-success settlement (failed / cancelled /
  // deadline-exceeded / quarantined), else empty. Valid once settled.
  std::string error() const;

  // Requests cooperative cancellation: sticky, callable from any thread,
  // idempotent. A queued job settles kCancelled without running; a running
  // job unwinds at its next checkpoint (Stager batch boundary or phase
  // bracket) with its arena charge reclaimed. Does not block — use wait()
  // to observe the settlement.
  void cancel();

  // Blocks until the job settles. The calling thread helps drain the
  // queues (combining) rather than sleeping while the server has work.
  void wait();

 private:
  friend class JobServer;
  struct State;
  std::shared_ptr<State> st_;
  JobServer* srv_ = nullptr;
};

class JobServer {
 public:
  struct Options {
    std::size_t max_outstanding = 64;       // admitted, unfinished jobs
    std::size_t max_queue_per_tenant = 32;  // ditto, per tenant
    std::uint32_t admission_retry_budget = 16;  // backoff rounds then reject
    // Fault-typed phase failures (ScratchpadError) a single job may
    // accumulate before it settles kQuarantined instead of retrying — the
    // containment bound for a job that trips fault sites forever.
    std::uint32_t quarantine_fault_trips = 3;
    // Default per-phase wall-clock watchdog (0 = off). JobSpec's
    // wall_timeout_s overrides per job.
    double watchdog_wall_s = 0;
  };

  enum class ShutdownMode {
    kDrain,  // stop accepting, run every admitted job to completion
    kAbort,  // stop accepting, cancel all admitted jobs, settle kCancelled
  };

  // Server-wide lifecycle counters, exported as cancel.* / deadline.* /
  // quarantine.* / retry.* through export_metrics.
  struct LifecycleStats {
    std::uint64_t cancel_requested = 0;   // JobHandle::cancel() calls
    std::uint64_t cancelled = 0;          // jobs settled kCancelled
    std::uint64_t shutdown_cancelled = 0; // subset swept by shutdown(kAbort)
    std::uint64_t deadline_expired = 0;   // modeled-deadline settlements
    std::uint64_t watchdog_fired = 0;     // wall-watchdog settlements
    std::uint64_t quarantined = 0;        // jobs settled kQuarantined
    std::uint64_t retries = 0;            // phase-0 restarts granted
    std::uint64_t reclaimed_bytes = 0;    // quota refunded at settlement
  };

  explicit JobServer(Machine& m);  // default Options
  JobServer(Machine& m, Options opt);
  ~JobServer();  // drains outstanding work

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  Machine& machine() { return machine_; }

  // Registers a tenant (name must be unique). The returned arena is owned
  // by the server and stays valid for the server's lifetime.
  TenantArena& add_tenant(const std::string& name, std::uint64_t quota_bytes);

  // Admits or rejects `spec` (its tenant must be registered). Never blocks
  // indefinitely: under overload it backs off by helping drain, and after
  // `admission_retry_budget` attempts without capacity returns a handle in
  // the kRejected state.
  JobHandle submit(JobSpec spec);

  // Runs scheduling rounds until every queue is empty. Under
  // TLM_CHECK_MODEL also verifies tenant attribution conservation
  // (model.tenant_attribution).
  void drain();

  // Stops accepting submissions (a later submit is a precondition
  // violation, as is a second shutdown), then settles every admitted job:
  // kDrain runs them to completion, kAbort sweeps a shutdown-cancel through
  // the queues so everything settles kCancelled with its quota reclaimed.
  // Blocks until the queues are empty; safe to call while submitters and
  // waiters are active on other threads.
  void shutdown(ShutdownMode mode);
  bool accepting() const;

  // Snapshot of the server-wide lifecycle counters.
  LifecycleStats lifecycle_stats() const;

  // Snapshot of one tenant's counters and attribution.
  TenantStats tenant_stats(const std::string& name) const;
  std::vector<std::string> tenant_names() const;

  // Emits tenant.<name>.* counters/gauges into `reg`. Call once per
  // registry, like the obs export_stats overloads.
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct Tenant;
  struct Work;

  static bool settled(const std::shared_ptr<JobHandle::State>& st);
  bool become_combiner();
  // Lock-free-looking read for cv predicates that already hold mu_ through
  // UniqueLock::native() — the analysis cannot see that, hence the opt-out.
  bool combining_now() const TLM_NO_THREAD_SAFETY_ANALYSIS {
    return combining_;
  }
  void wait_settled(const std::shared_ptr<JobHandle::State>& st);
  friend class JobHandle;
  // Runs up to `max_phases` phases as the combiner (caller must hold the
  // role), releases the role, wakes waiters. Returns phases run.
  std::size_t combine(std::size_t max_phases,
                      const std::function<bool()>& stop);
  bool pick_next_locked(Work& w) TLM_REQUIRES(mu_);
  void execute(Work& w);
  void finish_locked(Work& w) TLM_REQUIRES(mu_);
  // Settles the job at `pos` in t's queue with terminal status `final`
  // (reason distinguishes the deadline/watchdog and cancel/shutdown
  // flavours for counters); reclaims the arena charge when the settling job
  // is the front one — the only queue position that can own charges.
  // Returns the iterator past the erased entry.
  std::deque<std::shared_ptr<JobHandle::State>>::iterator settle_locked(
      Tenant& t, std::deque<std::shared_ptr<JobHandle::State>>::iterator pos,
      JobStatus final, CancelReason reason) TLM_REQUIRES(mu_);
  // Settles every already-decided queued job (cancel/shutdown requests
  // anywhere, finished or deadline-expired jobs at the front) without
  // scheduling anything.
  void sweep_locked(Tenant& t) TLM_REQUIRES(mu_);
  void request_cancel(const std::shared_ptr<JobHandle::State>& st);
  void check_attribution_locked() TLM_REQUIRES(mu_);

  Machine& machine_;
  Options opt_;

  mutable Mutex mu_;
  std::condition_variable cv_;
  bool combining_ TLM_GUARDED_BY(mu_) = false;
  bool accepting_ TLM_GUARDED_BY(mu_) = true;
  std::size_t rr_ TLM_GUARDED_BY(mu_) = 0;  // round-robin tenant cursor
  std::size_t outstanding_ TLM_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Tenant>> tenants_ TLM_GUARDED_BY(mu_);
  LifecycleStats lifecycle_ TLM_GUARDED_BY(mu_);

  // Attribution bookkeeping (combiner-only, but mutated under mu_ in
  // finish_locked): the machine totals as of the last bracketed phase, and
  // traffic observed outside any tenant phase.
  PhaseStats last_snapshot_ TLM_GUARDED_BY(mu_);
  PhaseStats untenanted_ TLM_GUARDED_BY(mu_);
};

}  // namespace tlm::server
