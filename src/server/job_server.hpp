// JobServer — a long-lived multi-tenant runtime over one shared Machine.
//
// Tenants register with a near-memory quota, then submit jobs: ordered
// lists of phases that run on the shared ThreadPool. Nobody owns run_spmd
// anymore — the server is the single orchestrator, and it schedules one
// phase at a time, round-robin across tenants, with that tenant's
// TenantArena installed as the quota gate for the duration of the phase.
//
// The coordination core follows the combining idiom (cf. the Synch
// framework's flat-combining objects): there is no dedicated scheduler
// thread — that would also violate the raw-thread lint rule — instead any
// client thread that calls submit()/wait()/drain() tries to become the
// combiner, drains scheduling rounds while it holds the role, and hands it
// off through the server mutex. Phases therefore execute serially, which
// is what makes per-tenant attribution exact: the combiner brackets every
// phase with Machine::totals() snapshots and charges the delta to the
// tenant that ran.
//
// Admission control: a bounded number of outstanding jobs overall and per
// tenant. An over-capacity submit does bounded deterministic backoff —
// each attempt the submitter helps drain the queues (runs up to 2^attempt
// scheduling rounds as the combiner) instead of sleeping, so backoff makes
// progress by construction; when the retry budget is exhausted with no
// capacity the job is rejected, never dropped silently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "scratchpad/machine.hpp"
#include "server/tenant_arena.hpp"

namespace tlm::server {

// Everything a phase body may touch. Near memory goes through `arena`
// (quota-checked); the machine reference is for instrumented operations,
// parallel_for/run_spmd, and far allocation. Library code called from a
// phase (sort::*, kmeans::*) allocates through the Machine as always — the
// installed gate charges those allocations to the tenant transparently.
struct JobContext {
  Machine& machine;
  TenantArena& arena;
};

struct JobPhase {
  std::string name;
  std::function<void(JobContext&)> fn;
};

struct JobSpec {
  std::string tenant;
  std::string name;
  std::vector<JobPhase> phases;
};

enum class JobStatus : int {
  kQueued,
  kRunning,
  kDone,
  kFailed,    // a phase threw; error() carries the message
  kRejected,  // admission control turned it away
};

// Per-tenant observables, copyable snapshot (see JobServer::tenant_stats).
struct TenantStats {
  std::string tenant;
  std::uint64_t quota_bytes = 0;
  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t backoff_stalls = 0;
  std::uint64_t quota_denials = 0;
  std::uint64_t high_water_bytes = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t phases_run = 0;
  // Worst degradation-ladder level this tenant's phases drove any Stager
  // to: 0 = double-buffered, 1 = single, 2 = direct-from-far.
  int degrade_level = 0;
  // Exact attribution of the shared machine's counters to this tenant
  // (snapshot deltas around its serially-executed phases).
  PhaseStats attributed;
  StagerStats stager;
  FaultStats faults;
  // Host seconds each scheduled phase spent executing (service time, not
  // queue wait) — informational; host timing jitters with the machine load.
  std::vector<double> phase_seconds;
  // Modeled seconds per phase (the analytic time model's deterministic
  // answer) — the isolation gate's p99 input: a neighbor can only inflate
  // it by actually changing where this tenant's data lives.
  std::vector<double> phase_model_seconds;
};

class JobServer;

class JobHandle {
 public:
  JobHandle() = default;

  JobStatus status() const;
  bool done() const { return status() == JobStatus::kDone; }
  bool rejected() const { return status() == JobStatus::kRejected; }
  // Message from the phase exception when status() == kFailed, else empty.
  // Valid once the job is settled (done/failed/rejected).
  std::string error() const;

  // Blocks until the job settles. The calling thread helps drain the
  // queues (combining) rather than sleeping while the server has work.
  void wait();

 private:
  friend class JobServer;
  struct State;
  std::shared_ptr<State> st_;
  JobServer* srv_ = nullptr;
};

class JobServer {
 public:
  struct Options {
    std::size_t max_outstanding = 64;       // admitted, unfinished jobs
    std::size_t max_queue_per_tenant = 32;  // ditto, per tenant
    std::uint32_t admission_retry_budget = 16;  // backoff rounds then reject
  };

  explicit JobServer(Machine& m);  // default Options
  JobServer(Machine& m, Options opt);
  ~JobServer();  // drains outstanding work

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  Machine& machine() { return machine_; }

  // Registers a tenant (name must be unique). The returned arena is owned
  // by the server and stays valid for the server's lifetime.
  TenantArena& add_tenant(const std::string& name, std::uint64_t quota_bytes);

  // Admits or rejects `spec` (its tenant must be registered). Never blocks
  // indefinitely: under overload it backs off by helping drain, and after
  // `admission_retry_budget` attempts without capacity returns a handle in
  // the kRejected state.
  JobHandle submit(JobSpec spec);

  // Runs scheduling rounds until every queue is empty. Under
  // TLM_CHECK_MODEL also verifies tenant attribution conservation
  // (model.tenant_attribution).
  void drain();

  // Snapshot of one tenant's counters and attribution.
  TenantStats tenant_stats(const std::string& name) const;
  std::vector<std::string> tenant_names() const;

  // Emits tenant.<name>.* counters/gauges into `reg`. Call once per
  // registry, like the obs export_stats overloads.
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct Tenant;
  struct Work;

  static bool settled(const std::shared_ptr<JobHandle::State>& st);
  bool become_combiner();
  // Lock-free-looking read for cv predicates that already hold mu_ through
  // UniqueLock::native() — the analysis cannot see that, hence the opt-out.
  bool combining_now() const TLM_NO_THREAD_SAFETY_ANALYSIS {
    return combining_;
  }
  void wait_settled(const std::shared_ptr<JobHandle::State>& st);
  friend class JobHandle;
  // Runs up to `max_phases` phases as the combiner (caller must hold the
  // role), releases the role, wakes waiters. Returns phases run.
  std::size_t combine(std::size_t max_phases,
                      const std::function<bool()>& stop);
  bool pick_next_locked(Work& w) TLM_REQUIRES(mu_);
  void execute(Work& w);
  void finish_locked(Work& w) TLM_REQUIRES(mu_);
  void check_attribution_locked() TLM_REQUIRES(mu_);

  Machine& machine_;
  Options opt_;

  mutable Mutex mu_;
  std::condition_variable cv_;
  bool combining_ TLM_GUARDED_BY(mu_) = false;
  std::size_t rr_ TLM_GUARDED_BY(mu_) = 0;  // round-robin tenant cursor
  std::size_t outstanding_ TLM_GUARDED_BY(mu_) = 0;
  std::vector<std::unique_ptr<Tenant>> tenants_ TLM_GUARDED_BY(mu_);

  // Attribution bookkeeping (combiner-only, but mutated under mu_ in
  // finish_locked): the machine totals as of the last bracketed phase, and
  // traffic observed outside any tenant phase.
  PhaseStats last_snapshot_ TLM_GUARDED_BY(mu_);
  PhaseStats untenanted_ TLM_GUARDED_BY(mu_);
};

}  // namespace tlm::server
