#include "server/tenant_arena.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace tlm::server {

TenantArena::TenantArena(Machine& m, std::string tenant,
                         std::uint64_t quota_bytes)
    : m_(m), tenant_(std::move(tenant)), quota_(quota_bytes) {
  TLM_REQUIRE(quota_ <= m_.near_arena().capacity(),
              "tenant quota exceeds the scratchpad capacity");
}

TenantArena::~TenantArena() { uninstall(); }

void TenantArena::uninstall() {
  if (m_.near_gate() == this) m_.set_near_gate(nullptr);
}

std::byte* TenantArena::try_alloc(std::uint64_t bytes, std::uint64_t align,
                                  std::source_location loc) {
  // Inside a scheduled phase the scheduler has already installed this gate,
  // so worker threads take the fast path with no gate swapping. The swap
  // path serves standalone use (tests, setup code) and is orchestrator-
  // thread-only by contract — concurrent standalone callers would race on
  // the restore.
  if (m_.near_gate() == this) return m_.try_alloc_near(bytes, align, loc);
  NearQuotaGate* prev = m_.near_gate();
  m_.set_near_gate(this);
  // tlm-lint: allow(unchecked-try-alloc): fallible pass-through to caller
  std::byte* p = m_.try_alloc_near(bytes, align, loc);
  m_.set_near_gate(prev);
  return p;
}

std::byte* TenantArena::alloc_or_throw(std::uint64_t bytes,
                                       std::uint64_t align,
                                       std::source_location loc) {
  std::byte* p = try_alloc(bytes, align, loc);
  if (p) return p;
  const std::uint64_t u = used_bytes();
  throw ScratchpadError(kQuotaSite, bytes, quota_ > u ? quota_ - u : 0);
}

void TenantArena::dealloc(std::byte* p) {
  // Near frees route through the Machine with this gate installed so the
  // freed() credit fires even outside a scheduled phase.
  if (m_.space_of(p) != Space::Near || m_.near_gate() == this) {
    m_.dealloc(p);
    return;
  }
  NearQuotaGate* prev = m_.near_gate();
  m_.set_near_gate(this);
  m_.dealloc(p);
  m_.set_near_gate(prev);
}

bool TenantArena::admit(std::uint64_t bytes, const std::source_location&) {
  const std::uint64_t u = used_.load(std::memory_order_relaxed);
  if (u + bytes > quota_) {
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  used_.store(u + bytes, std::memory_order_relaxed);
  return true;
}

void TenantArena::granted(const void* p, std::uint64_t bytes) {
  owned_.emplace(p, bytes);
  grants_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t u = used_.load(std::memory_order_relaxed);
  if (u > high_water_.load(std::memory_order_relaxed))
    high_water_.store(u, std::memory_order_relaxed);
}

void TenantArena::refund(std::uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void TenantArena::freed(const void* p, std::uint64_t /*block_bytes*/) {
  // Credit what was charged at admit time, not the arena's (possibly
  // padded) block length — the two must cancel exactly for the quota to
  // return to zero when every allocation is released.
  auto it = owned_.find(p);
  if (it == owned_.end()) {
    // Not ours: another tenant's pointer, a pre-server allocation, or a
    // double-free of something already credited. Counted rather than
    // silently dropped — a nonzero foreign_free is the observable symptom
    // of frees routed through the wrong facade.
    foreign_frees_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  used_.fetch_sub(it->second, std::memory_order_relaxed);
  releases_.fetch_add(1, std::memory_order_relaxed);
  owned_.erase(it);
}

std::uint64_t TenantArena::reclaim() {
  // Snapshot first: dealloc() re-enters freed(), which erases from owned_.
  // The quiescence contract makes the unlocked reads race-free, exactly as
  // in the standalone try_alloc path.
  std::vector<std::byte*> live;
  live.reserve(owned_.size());
  for (const auto& [p, bytes] : owned_)
    live.push_back(static_cast<std::byte*>(const_cast<void*>(p)));
  const std::uint64_t before = used_bytes();
  for (std::byte* p : live) {
    if (m_.space_of(p) == Space::Near &&
        !m_.near_arena().live_block_of(m_.near_arena().offset_of(p))) {
      // The block vanished behind our back — a cross-tenant free that the
      // other facade counted as foreign. Drop the stale charge so the
      // quota stays honest instead of double-freeing the arena block.
      auto it = owned_.find(p);
      used_.fetch_sub(it->second, std::memory_order_relaxed);
      owned_.erase(it);
      continue;
    }
    dealloc(p);
  }
  const std::uint64_t refunded = before - used_bytes();
  reclaimed_.fetch_add(refunded, std::memory_order_relaxed);
  return refunded;
}

void TenantArena::check_job_end([[maybe_unused]] const std::string& job) const {
#if TLM_MODEL_CHECKS_ENABLED
  const std::uint64_t u = used_bytes();
  if (u == 0) return;
  model_check_fail(
      model_rule::kTenantLeak, job,
      "tenant '" + tenant_ + "' still holds " + std::to_string(u) +
          " quota-charged scratchpad bytes across " +
          std::to_string(owned_.size()) +
          " allocation(s) at job end; jobs must release every near "
          "allocation before completing",
      std::source_location::current());
#endif
}

}  // namespace tlm::server
