#include "server/jobs.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "sort/sort.hpp"

namespace tlm::server {

const char* to_string(SortBackend b) {
  switch (b) {
    case SortBackend::kGnu:
      return "gnu";
    case SortBackend::kNMsort:
      return "nmsort";
    case SortBackend::kScratchpadSeq:
      return "scratchpad_seq";
    case SortBackend::kScratchpadPar:
      return "scratchpad_par";
    case SortBackend::kWriteEff:
      return "write_eff";
  }
  return "?";
}

JobSpec make_sort_job(std::string tenant, std::string name, SortBackend b,
                      std::size_t n, std::uint64_t seed,
                      std::shared_ptr<SortJobResult> result) {
  JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.name = std::move(name);
  spec.phases.push_back(
      {"gen", [result, n, seed](JobContext&) {
         result->input = random_keys(n, seed);
       }});
  // Seed XORs match analysis::run_sort_counting, so a job's output is
  // byte-identical to the experiment harness's run of the same backend.
  spec.phases.push_back(
      {"sort", [result, b, seed](JobContext& ctx) {
         Machine& m = ctx.machine;
         switch (b) {
           case SortBackend::kGnu: {
             result->output = result->input;
             sort::gnu_like_sort(m,
                                 std::span<std::uint64_t>(result->output));
             break;
           }
           case SortBackend::kNMsort: {
             result->output.assign(result->input.size(), 0);
             sort::NMSortOptions opt;
             opt.seed = seed ^ 0x9e3779b97f4a7c15ULL;
             sort::nm_sort_into(
                 m, std::span<const std::uint64_t>(result->input),
                 std::span<std::uint64_t>(result->output), opt);
             break;
           }
           case SortBackend::kScratchpadSeq: {
             result->output = result->input;
             sort::ScratchpadSortOptions opt;
             opt.seed = seed ^ 0x517cc1b727220a95ULL;
             sort::scratchpad_sort(m,
                                   std::span<std::uint64_t>(result->output),
                                   opt);
             break;
           }
           case SortBackend::kScratchpadPar: {
             result->output = result->input;
             sort::ParallelScratchpadSortOptions opt;
             opt.seed = seed ^ 0x2545f4914f6cdd1dULL;
             sort::parallel_scratchpad_sort(
                 m, std::span<std::uint64_t>(result->output), opt);
             break;
           }
           case SortBackend::kWriteEff: {
             result->output.assign(result->input.size(), 0);
             sort::WESortOptions opt;
             opt.seed = seed ^ 0x9e3779b97f4a7c15ULL;
             sort::we_sort_into(
                 m, std::span<const std::uint64_t>(result->input),
                 std::span<std::uint64_t>(result->output), opt);
             break;
           }
         }
       }});
  spec.phases.push_back(
      {"check", [result](JobContext&) {
         std::vector<std::uint64_t> expect = result->input;
         std::sort(expect.begin(), expect.end());
         result->verified = result->output == expect;
       }});
  return spec;
}

JobSpec make_kmeans_job(std::string tenant, std::string name, std::size_t n,
                        std::size_t dims, std::size_t k, std::uint64_t seed,
                        std::shared_ptr<KMeansJobResult> result) {
  JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.name = std::move(name);
  spec.phases.push_back(
      {"gen", [result, n, dims, k, seed](JobContext&) {
         result->points = kmeans::make_blobs(n, dims, k, seed);
       }});
  spec.phases.push_back(
      {"cluster", [result, dims, k, seed](JobContext& ctx) {
         kmeans::KMeansOptions opt;
         opt.k = k;
         opt.dims = dims;
         opt.seed = seed;
         result->result = kmeans::kmeans_staged(
             ctx.machine, std::span<const double>(result->points), opt);
       }});
  return spec;
}

}  // namespace tlm::server
