// TenantArena — a per-tenant, quota-checked view of the shared scratchpad.
//
// The job server partitions the Machine's near memory between tenants by
// budget, not by address range: every tenant allocates from the same
// NearArena, but a TenantArena installed as the Machine's NearQuotaGate
// charges each fallible near allocation against that tenant's quota first.
// A tenant over budget sees try_alloc fail exactly as if the arena were
// full, so the PR 5 degradation ladder (double → single buffering →
// direct-from-far) becomes the per-tenant QoS mechanism for free: the
// thrashing tenant's Stagers step down while its neighbors' allocations
// keep succeeding against untouched arena space.
//
// Code under src/server must allocate near memory through this facade —
// never through the Machine directly (tlm_lint's server-near-alloc rule).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <source_location>
#include <span>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "scratchpad/machine.hpp"

namespace tlm::server {

// Site name reported by the throwing allocation path on quota exhaustion.
inline constexpr const char* kQuotaSite = "server.tenant_quota";

class TenantArena final : public NearQuotaGate {
 public:
  // `quota_bytes` is the tenant's near-memory budget. Zero is legal and
  // means "far memory only": every quota-checked allocation is denied and
  // the tenant runs fully degraded.
  TenantArena(Machine& m, std::string tenant, std::uint64_t quota_bytes);
  ~TenantArena() override;

  TenantArena(const TenantArena&) = delete;
  TenantArena& operator=(const TenantArena&) = delete;

  // ---- quota-checked allocation (the only near path for server code) -----
  // Fallible: nullptr when the quota, the arena, or an armed fault injector
  // denies the request. Callers degrade, same contract as
  // Machine::try_alloc_near.
  std::byte* try_alloc(
      std::uint64_t bytes, std::uint64_t align = 64,
      std::source_location loc = std::source_location::current());

  template <typename T>
  std::span<T> try_alloc_array(
      std::size_t n,
      std::source_location loc = std::source_location::current()) {
    auto* p =
        try_alloc(n * sizeof(T), alignof(T) < 64 ? 64 : alignof(T), loc);
    return p ? std::span<T>{reinterpret_cast<T*>(p), n} : std::span<T>{};
  }

  // Throwing variant for callers that treat quota exhaustion as an error:
  // raises the typed ScratchpadError (site server.tenant_quota) carrying the
  // requested size and the tenant's remaining budget.
  std::byte* alloc_or_throw(
      std::uint64_t bytes, std::uint64_t align = 64,
      std::source_location loc = std::source_location::current());

  // Infallible two-level allocation: near within quota, far otherwise.
  template <typename T>
  std::span<T> alloc_array_or_far(
      std::size_t n,
      std::source_location loc = std::source_location::current()) {
    if (std::span<T> a = try_alloc_array<T>(n, loc); !a.empty()) return a;
    return m_.alloc_array<T>(Space::Far, n, loc);
  }

  // Space-inferred free; near frees credit the quota via the gate protocol.
  void dealloc(std::byte* p);
  template <typename T>
  void free_array(std::span<T> a) {
    dealloc(reinterpret_cast<std::byte*>(a.data()));
  }

  // Frees every still-charged allocation this tenant owns and returns the
  // bytes refunded. The scheduler calls it when a job settles off the
  // success path (cancelled / deadline-exceeded / quarantined / about to
  // retry), so settlement is leak-free by construction: the quota returns
  // to zero and the arena space is handed back even though the unwound
  // phase body never reached its own frees. Orchestrator-only and
  // quiescent, like the standalone try_alloc path — it must not race live
  // phase allocations.
  std::uint64_t reclaim();

  // ---- gate lifecycle (the scheduler brackets each tenant phase) ---------
  // While installed, every Machine::try_alloc_near — including ones made
  // deep inside sort/kmeans/Stager code that has never heard of tenants —
  // is charged against this tenant's budget.
  void install() { m_.set_near_gate(this); }
  void uninstall();
  bool installed() const { return m_.near_gate() == this; }

  // ---- observables (readable from any thread) ----------------------------
  const std::string& tenant() const { return tenant_; }
  std::uint64_t quota_bytes() const { return quota_; }
  std::uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::uint64_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t quota_denials() const {
    return denials_.load(std::memory_order_relaxed);
  }
  std::uint64_t grants() const {
    return grants_.load(std::memory_order_relaxed);
  }
  std::uint64_t releases() const {
    return releases_.load(std::memory_order_relaxed);
  }
  // Near frees observed while installed for pointers this tenant never
  // charged. Nonzero usually means a cross-tenant free or a double-free
  // routed through the wrong facade — counted, never credited, and exported
  // as tenant.<name>.foreign_free.
  std::uint64_t foreign_frees() const {
    return foreign_frees_.load(std::memory_order_relaxed);
  }
  // Bytes handed back by reclaim() over this arena's lifetime.
  std::uint64_t reclaimed_bytes() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // ---- NearQuotaGate (called by the Machine under its alloc_mu_) ---------
  bool admit(std::uint64_t bytes, const std::source_location& loc) override;
  void granted(const void* p, std::uint64_t bytes) override;
  void refund(std::uint64_t bytes) override;
  void freed(const void* p, std::uint64_t bytes) override;

  // Model-sanitizer hook, run by the scheduler when a tenant's job
  // completes: quota-charged bytes still live at job end are a tenant leak
  // (rule model.tenant_leak). A no-op outside TLM_CHECK_MODEL builds.
  void check_job_end(const std::string& job) const;

 private:
  Machine& m_;
  std::string tenant_;
  std::uint64_t quota_;

  // Charged bytes and counters. Every mutation happens under the Machine's
  // alloc_mu_ (the gate callbacks run there; the standalone try_alloc path
  // reaches them through Machine::try_alloc_near), so plain load/store pairs
  // are race-free; atomics let the metrics exporter read without the lock.
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> foreign_frees_{0};
  std::atomic<std::uint64_t> reclaimed_{0};

  // Live quota-charged allocations: base pointer -> charged bytes. freed()
  // consults it so frees of pointers this tenant never charged (another
  // tenant's, or pre-server allocations) are ignored rather than credited.
  std::map<const void*, std::uint64_t> owned_;
};

}  // namespace tlm::server
