#include "server/job_server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/assert.hpp"

namespace tlm::server {

// ---------------------------------------------------------------------------
// internal state

struct JobHandle::State {
  JobSpec spec;
  // JobStatus, stored with release so `error` (written first) is visible to
  // any thread that observed the settled status with acquire.
  std::atomic<int> status{static_cast<int>(JobStatus::kQueued)};
  std::size_t next_phase = 0;  // scheduler-owned, mutated under the server mu_
  std::string error;
};

struct JobServer::Tenant {
  std::string name;
  TenantArena arena;
  std::deque<std::shared_ptr<JobHandle::State>> queue;

  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t backoff_stalls = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t phases_run = 0;

  PhaseStats attributed;
  StagerStats stager;
  FaultStats faults;
  std::vector<double> phase_seconds;
  std::vector<double> phase_model_seconds;

  Tenant(Machine& m, const std::string& n, std::uint64_t quota)
      : name(n), arena(m, n, quota) {}
};

// One scheduling round: a (tenant, job, phase) pick plus the snapshots the
// combiner takes around its execution.
struct JobServer::Work {
  Tenant* tenant = nullptr;
  std::shared_ptr<JobHandle::State> job;
  const JobPhase* phase = nullptr;
  bool failed = false;
  std::string error;
  PhaseStats before, after;
  StagerStats stager_before, stager_after;
  FaultStats faults_before, faults_after;
  double host_s = 0;
};

// ---------------------------------------------------------------------------
// JobHandle

JobStatus JobHandle::status() const {
  TLM_REQUIRE(st_ != nullptr, "empty JobHandle");
  return static_cast<JobStatus>(st_->status.load(std::memory_order_acquire));
}

std::string JobHandle::error() const {
  TLM_REQUIRE(st_ != nullptr, "empty JobHandle");
  const auto s = status();
  return s == JobStatus::kFailed ? st_->error : std::string();
}

void JobHandle::wait() {
  TLM_REQUIRE(st_ != nullptr && srv_ != nullptr, "empty JobHandle");
  srv_->wait_settled(st_);
}

// ---------------------------------------------------------------------------
// JobServer

bool JobServer::settled(const std::shared_ptr<JobHandle::State>& st) {
  const auto s =
      static_cast<JobStatus>(st->status.load(std::memory_order_acquire));
  return s == JobStatus::kDone || s == JobStatus::kFailed ||
         s == JobStatus::kRejected;
}

JobServer::JobServer(Machine& m) : JobServer(m, Options{}) {}

JobServer::JobServer(Machine& m, Options opt) : machine_(m), opt_(opt) {
  TLM_REQUIRE(opt_.max_outstanding > 0 && opt_.max_queue_per_tenant > 0,
              "admission limits must be positive");
  MutexLock lock(mu_);
  last_snapshot_ = machine_.totals();
}

JobServer::~JobServer() { drain(); }

TenantArena& JobServer::add_tenant(const std::string& name,
                                   std::uint64_t quota_bytes) {
  TLM_REQUIRE(!name.empty(), "tenant name must be non-empty");
  MutexLock lock(mu_);
  for (const auto& t : tenants_)
    TLM_REQUIRE(t->name != name, "tenant already registered");
  tenants_.push_back(std::make_unique<Tenant>(machine_, name, quota_bytes));
  return tenants_.back()->arena;
}

bool JobServer::become_combiner() {
  MutexLock lock(mu_);
  if (combining_) return false;
  combining_ = true;
  return true;
}

bool JobServer::pick_next_locked(Work& w) {
  if (tenants_.empty()) return false;
  const std::size_t n = tenants_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Tenant& t = *tenants_[(rr_ + i) % n];
    // Settle zero-phase jobs inline — there is nothing to schedule.
    while (!t.queue.empty() &&
           t.queue.front()->next_phase == t.queue.front()->spec.phases.size()) {
      t.arena.check_job_end(t.queue.front()->spec.name);
      t.queue.front()->status.store(static_cast<int>(JobStatus::kDone),
                                    std::memory_order_release);
      t.queue.pop_front();
      --outstanding_;
      ++t.jobs_completed;
    }
    if (t.queue.empty()) continue;
    w.tenant = &t;
    w.job = t.queue.front();
    w.phase = &w.job->spec.phases[w.job->next_phase];
    rr_ = ((rr_ + i) % n) + 1;  // fairness: next round starts after us
    return true;
  }
  return false;
}

void JobServer::execute(Work& w) {
  Tenant& t = *w.tenant;
  w.before = machine_.totals();
  w.stager_before = machine_.stager_stats();
  w.faults_before = machine_.fault_stats();
  w.job->status.store(static_cast<int>(JobStatus::kRunning),
                      std::memory_order_release);

  t.arena.install();
  machine_.begin_phase("tenant/" + t.name + "/" + w.job->spec.name + "/" +
                       w.phase->name);
  JobContext ctx{machine_, t.arena};
  const auto t0 = std::chrono::steady_clock::now();
  try {
    w.phase->fn(ctx);
  } catch (const std::exception& e) {
    w.failed = true;
    w.error = e.what();
  } catch (...) {
    w.failed = true;
    w.error = "unknown exception";
  }
  const auto t1 = std::chrono::steady_clock::now();
  machine_.end_phase();
  t.arena.uninstall();

  w.after = machine_.totals();
  w.stager_after = machine_.stager_stats();
  w.faults_after = machine_.fault_stats();
  w.host_s = std::chrono::duration<double>(t1 - t0).count();
}

void JobServer::finish_locked(Work& w) {
  Tenant& t = *w.tenant;
  // Traffic between the previous bracketed phase and this one ran outside
  // any tenant (direct Machine use by the embedding program); keep it in a
  // separate bucket so attribution stays conservative, not approximate.
  untenanted_ += phase_delta(w.before, last_snapshot_);
  const PhaseStats attributed = phase_delta(w.after, w.before);
  t.attributed += attributed;
  t.stager += stager_delta(w.stager_after, w.stager_before);
  t.faults += fault_delta(w.faults_after, w.faults_before);
  last_snapshot_ = w.after;
  t.phase_seconds.push_back(w.host_s);
  t.phase_model_seconds.push_back(attributed.seconds);
  ++t.phases_run;

  if (w.failed) {
    w.job->error = w.error;
    w.job->status.store(static_cast<int>(JobStatus::kFailed),
                        std::memory_order_release);
    t.queue.pop_front();
    --outstanding_;
    ++t.jobs_failed;
    return;
  }
  ++w.job->next_phase;
  if (w.job->next_phase == w.job->spec.phases.size()) {
    t.arena.check_job_end(w.job->spec.name);
    w.job->status.store(static_cast<int>(JobStatus::kDone),
                        std::memory_order_release);
    t.queue.pop_front();
    --outstanding_;
    ++t.jobs_completed;
    return;
  }
  w.job->status.store(static_cast<int>(JobStatus::kQueued),
                      std::memory_order_release);
}

std::size_t JobServer::combine(std::size_t max_phases,
                               const std::function<bool()>& stop) {
  std::size_t ran = 0;
  while (ran < max_phases && !stop()) {
    Work w;
    {
      MutexLock lock(mu_);
      if (!pick_next_locked(w)) break;
    }
    execute(w);
    {
      MutexLock lock(mu_);
      finish_locked(w);
    }
    cv_.notify_all();
    ++ran;
  }
  {
    MutexLock lock(mu_);
    combining_ = false;
  }
  cv_.notify_all();
  return ran;
}

JobHandle JobServer::submit(JobSpec spec) {
  auto st = std::make_shared<JobHandle::State>();
  st->spec = std::move(spec);
  JobHandle h;
  h.st_ = st;
  h.srv_ = this;

  std::uint32_t attempt = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      Tenant* tenant = nullptr;
      for (const auto& t : tenants_)
        if (t->name == st->spec.tenant) tenant = t.get();
      TLM_REQUIRE(tenant != nullptr, "submit: unregistered tenant");
      if (outstanding_ < opt_.max_outstanding &&
          tenant->queue.size() < opt_.max_queue_per_tenant) {
        tenant->queue.push_back(st);
        ++outstanding_;
        ++tenant->admissions;
        return h;
      }
      ++attempt;
      ++tenant->backoff_stalls;
      if (attempt > opt_.admission_retry_budget) {
        ++tenant->rejections;
        st->status.store(static_cast<int>(JobStatus::kRejected),
                         std::memory_order_release);
        return h;
      }
    }
    // Bounded deterministic backoff: instead of sleeping, the submitter
    // helps drain the queues — up to 2^attempt scheduling rounds as the
    // combiner — so each retry is preceded by real forward progress. When
    // another thread already holds the combiner role, block until it hands
    // the role off (its finish rounds notify the cv).
    if (become_combiner()) {
      combine(std::size_t{1} << std::min<std::uint32_t>(attempt, 10),
              [] { return false; });
    } else {
      UniqueLock lock(mu_);
      cv_.wait(lock.native(), [this] { return !combining_now(); });
    }
  }
}

void JobServer::wait_settled(const std::shared_ptr<JobHandle::State>& st) {
  while (!settled(st)) {
    if (become_combiner()) {
      combine(~std::size_t{0}, [&st] { return settled(st); });
    } else {
      UniqueLock lock(mu_);
      cv_.wait(lock.native(),
               [this, &st] { return settled(st) || !combining_now(); });
    }
  }
}

void JobServer::drain() {
  for (;;) {
    if (become_combiner()) {
      combine(~std::size_t{0}, [] { return false; });
      MutexLock lock(mu_);
      if (outstanding_ == 0) {
        check_attribution_locked();
        return;
      }
    } else {
      UniqueLock lock(mu_);
      cv_.wait(lock.native(), [this] { return !combining_now(); });
    }
  }
}

void JobServer::check_attribution_locked() {
#if TLM_MODEL_CHECKS_ENABLED
  // Conservation: every byte the machine counted since the server started
  // must be attributed to exactly one tenant or the untenanted bucket.
  // The tail delta covers traffic after the last bracketed phase.
  const PhaseStats grand = machine_.totals();
  PhaseStats sum = untenanted_;
  for (const auto& t : tenants_) sum += t->attributed;
  sum += phase_delta(grand, last_snapshot_);
  const auto bad = [](const char* what, std::uint64_t attributed,
                      std::uint64_t total) {
    model_check_fail(model_rule::kTenantAttribution, "(drain)",
                     std::string(what) + ": tenant attribution sums to " +
                         std::to_string(attributed) +
                         " but the machine counted " + std::to_string(total) +
                         " — a scheduled phase escaped its snapshots",
                     std::source_location::current());
  };
  if (sum.far_read_bytes != grand.far_read_bytes)
    bad("far_read_bytes", sum.far_read_bytes, grand.far_read_bytes);
  if (sum.far_write_bytes != grand.far_write_bytes)
    bad("far_write_bytes", sum.far_write_bytes, grand.far_write_bytes);
  if (sum.near_read_bytes != grand.near_read_bytes)
    bad("near_read_bytes", sum.near_read_bytes, grand.near_read_bytes);
  if (sum.near_write_bytes != grand.near_write_bytes)
    bad("near_write_bytes", sum.near_write_bytes, grand.near_write_bytes);
  if (sum.far_blocks != grand.far_blocks)
    bad("far_blocks", sum.far_blocks, grand.far_blocks);
  if (sum.near_blocks != grand.near_blocks)
    bad("near_blocks", sum.near_blocks, grand.near_blocks);
  if (sum.far_bursts != grand.far_bursts)
    bad("far_bursts", sum.far_bursts, grand.far_bursts);
  if (sum.near_bursts != grand.near_bursts)
    bad("near_bursts", sum.near_bursts, grand.near_bursts);
  if (sum.dma_far_bytes != grand.dma_far_bytes)
    bad("dma_far_bytes", sum.dma_far_bytes, grand.dma_far_bytes);
  if (sum.dma_near_bytes != grand.dma_near_bytes)
    bad("dma_near_bytes", sum.dma_near_bytes, grand.dma_near_bytes);
#endif
}

TenantStats JobServer::tenant_stats(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& t : tenants_) {
    if (t->name != name) continue;
    TenantStats s;
    s.tenant = t->name;
    s.quota_bytes = t->arena.quota_bytes();
    s.admissions = t->admissions;
    s.rejections = t->rejections;
    s.backoff_stalls = t->backoff_stalls;
    s.quota_denials = t->arena.quota_denials();
    s.high_water_bytes = t->arena.high_water_bytes();
    s.jobs_completed = t->jobs_completed;
    s.jobs_failed = t->jobs_failed;
    s.phases_run = t->phases_run;
    s.degrade_level = t->stager.degrade_to_direct > 0   ? 2
                      : t->stager.degrade_to_single > 0 ? 1
                                                        : 0;
    s.attributed = t->attributed;
    s.stager = t->stager;
    s.faults = t->faults;
    s.phase_seconds = t->phase_seconds;
    s.phase_model_seconds = t->phase_model_seconds;
    return s;
  }
  TLM_REQUIRE(false, "tenant_stats: unregistered tenant");
  return {};
}

std::vector<std::string> JobServer::tenant_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t->name);
  return out;
}

void JobServer::export_metrics(obs::MetricsRegistry& reg) const {
  MutexLock lock(mu_);
  for (const auto& t : tenants_) {
    const std::string p = "tenant." + t->name + ".";
    reg.counter(p + "quota_bytes").add(t->arena.quota_bytes());
    reg.counter(p + "admissions").add(t->admissions);
    reg.counter(p + "rejections").add(t->rejections);
    reg.counter(p + "backoff_stalls").add(t->backoff_stalls);
    reg.counter(p + "quota_denials").add(t->arena.quota_denials());
    reg.counter(p + "high_water_bytes").add(t->arena.high_water_bytes());
    reg.counter(p + "jobs_completed").add(t->jobs_completed);
    reg.counter(p + "jobs_failed").add(t->jobs_failed);
    reg.counter(p + "phases").add(t->phases_run);
    reg.counter(p + "attributed_far_bytes").add(t->attributed.far_bytes());
    reg.counter(p + "attributed_near_bytes").add(t->attributed.near_bytes());
    reg.counter(p + "degrade_to_single").add(t->stager.degrade_to_single);
    reg.counter(p + "degrade_to_direct").add(t->stager.degrade_to_direct);
    reg.set_gauge(p + "degrade_level",
                  t->stager.degrade_to_direct > 0   ? 2
                  : t->stager.degrade_to_single > 0 ? 1
                                                    : 0);
  }
}

}  // namespace tlm::server
