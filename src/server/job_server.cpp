#include "server/job_server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "common/assert.hpp"

namespace tlm::server {

// ---------------------------------------------------------------------------
// internal state

struct JobHandle::State {
  JobSpec spec;
  // JobStatus, stored with release so `error` (written first) is visible to
  // any thread that observed the settled status with acquire.
  std::atomic<int> status{static_cast<int>(JobStatus::kQueued)};
  std::size_t next_phase = 0;  // scheduler-owned, mutated under the server mu_
  std::string error;
  // Lifecycle state. The token is the only field touched by non-scheduler
  // threads (cancel/shutdown request it; checkpoints read it) — it is
  // internally atomic. The rest is scheduler-owned like next_phase.
  CancelToken token;
  double model_consumed_s = 0;    // attributed modeled seconds so far
  std::uint32_t retries_used = 0;
  std::uint32_t fault_trips = 0;  // ScratchpadError-typed phase failures
};

struct JobServer::Tenant {
  std::string name;
  TenantArena arena;
  std::deque<std::shared_ptr<JobHandle::State>> queue;

  std::uint64_t admissions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t backoff_stalls = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_deadline_exceeded = 0;
  std::uint64_t jobs_quarantined = 0;
  std::uint64_t job_retries = 0;
  std::uint64_t phases_run = 0;

  PhaseStats attributed;
  StagerStats stager;
  FaultStats faults;
  std::vector<double> phase_seconds;
  std::vector<double> phase_model_seconds;

  Tenant(Machine& m, const std::string& n, std::uint64_t quota)
      : name(n), arena(m, n, quota) {}
};

// One scheduling round: a (tenant, job, phase) pick plus the snapshots the
// combiner takes around its execution.
struct JobServer::Work {
  Tenant* tenant = nullptr;
  std::shared_ptr<JobHandle::State> job;
  const JobPhase* phase = nullptr;
  bool failed = false;
  bool faulted = false;    // the failure was a typed ScratchpadError
  bool cancelled = false;  // a checkpoint threw CancelledError
  CancelReason reason = CancelReason::kNone;
  std::string error;
  // Token budgets for this phase, computed under mu_ at pick time so
  // execute() reads no scheduler-owned job state outside the lock.
  double model_budget_s = 0;
  double wall_budget_s = 0;
  std::uint64_t reclaimed = 0;  // quota bytes handed back on unwind
  PhaseStats before, after;
  StagerStats stager_before, stager_after;
  FaultStats faults_before, faults_after;
  double host_s = 0;
};

// ---------------------------------------------------------------------------
// JobHandle

JobStatus JobHandle::status() const {
  TLM_REQUIRE(st_ != nullptr, "empty JobHandle");
  return static_cast<JobStatus>(st_->status.load(std::memory_order_acquire));
}

std::string JobHandle::error() const {
  TLM_REQUIRE(st_ != nullptr, "empty JobHandle");
  switch (status()) {
    case JobStatus::kFailed:
    case JobStatus::kCancelled:
    case JobStatus::kDeadlineExceeded:
    case JobStatus::kQuarantined:
      return st_->error;
    default:
      return {};
  }
}

void JobHandle::cancel() {
  TLM_REQUIRE(st_ != nullptr && srv_ != nullptr, "empty JobHandle");
  srv_->request_cancel(st_);
}

void JobHandle::wait() {
  TLM_REQUIRE(st_ != nullptr && srv_ != nullptr, "empty JobHandle");
  srv_->wait_settled(st_);
}

// ---------------------------------------------------------------------------
// JobServer

bool JobServer::settled(const std::shared_ptr<JobHandle::State>& st) {
  const auto s =
      static_cast<JobStatus>(st->status.load(std::memory_order_acquire));
  return s == JobStatus::kDone || s == JobStatus::kFailed ||
         s == JobStatus::kRejected || s == JobStatus::kCancelled ||
         s == JobStatus::kDeadlineExceeded || s == JobStatus::kQuarantined;
}

JobServer::JobServer(Machine& m) : JobServer(m, Options{}) {}

JobServer::JobServer(Machine& m, Options opt) : machine_(m), opt_(opt) {
  TLM_REQUIRE(opt_.max_outstanding > 0 && opt_.max_queue_per_tenant > 0,
              "admission limits must be positive");
  MutexLock lock(mu_);
  last_snapshot_ = machine_.totals();
}

JobServer::~JobServer() { drain(); }

TenantArena& JobServer::add_tenant(const std::string& name,
                                   std::uint64_t quota_bytes) {
  TLM_REQUIRE(!name.empty(), "tenant name must be non-empty");
  MutexLock lock(mu_);
  for (const auto& t : tenants_)
    TLM_REQUIRE(t->name != name, "tenant already registered");
  tenants_.push_back(std::make_unique<Tenant>(machine_, name, quota_bytes));
  return tenants_.back()->arena;
}

bool JobServer::become_combiner() {
  MutexLock lock(mu_);
  if (combining_) return false;
  combining_ = true;
  return true;
}

std::deque<std::shared_ptr<JobHandle::State>>::iterator
JobServer::settle_locked(
    Tenant& t, std::deque<std::shared_ptr<JobHandle::State>>::iterator pos,
    JobStatus final, CancelReason reason) {
  const std::shared_ptr<JobHandle::State> st = *pos;
  const bool front = pos == t.queue.begin();
  if (front && final != JobStatus::kDone) {
    // Only the front job can own quota charges (check_job_end proves the
    // arena empty between jobs), so off-success settlement of the front is
    // where leaked allocations are handed back. Usually a no-op: a mid-
    // phase unwind already reclaimed in execute(), and jobs settled before
    // running own nothing.
    lifecycle_.reclaimed_bytes += t.arena.reclaim();
  }
  // Settlement honesty: after a completed job's own frees — or the reclaim
  // above — the tenant's charge must be zero (model.tenant_leak otherwise).
  if (front) t.arena.check_job_end(st->spec.name);
  switch (final) {
    case JobStatus::kDone:
      ++t.jobs_completed;
      break;
    case JobStatus::kFailed:
      ++t.jobs_failed;
      break;
    case JobStatus::kCancelled:
      ++t.jobs_cancelled;
      ++lifecycle_.cancelled;
      if (reason == CancelReason::kShutdown) ++lifecycle_.shutdown_cancelled;
      break;
    case JobStatus::kDeadlineExceeded:
      ++t.jobs_deadline_exceeded;
      if (reason == CancelReason::kWatchdog)
        ++lifecycle_.watchdog_fired;
      else
        ++lifecycle_.deadline_expired;
      break;
    case JobStatus::kQuarantined:
      ++t.jobs_quarantined;
      ++lifecycle_.quarantined;
      break;
    default:
      TLM_REQUIRE(false, "settle_locked: not a terminal status");
  }
  st->status.store(static_cast<int>(final), std::memory_order_release);
  --outstanding_;
  return t.queue.erase(pos);
}

void JobServer::sweep_locked(Tenant& t) {
  // Cancellation and shutdown requests settle anywhere in the queue — a
  // cancelled job behind the front must not wait for everything ahead of
  // it to run first.
  for (auto it = t.queue.begin(); it != t.queue.end();) {
    const CancelReason r = (*it)->token.requested();
    if (r == CancelReason::kCancelled || r == CancelReason::kShutdown) {
      (*it)->error = std::string("cancelled: ") + to_string(r);
      it = settle_locked(t, it, JobStatus::kCancelled, r);
      continue;
    }
    ++it;
  }
  // Front-only settlements: no work left, or the modeled deadline already
  // spent before the next phase would start.
  while (!t.queue.empty()) {
    const auto& st = t.queue.front();
    if (st->next_phase == st->spec.phases.size()) {
      settle_locked(t, t.queue.begin(), JobStatus::kDone, CancelReason::kNone);
      continue;
    }
    if (st->spec.deadline_model_s > 0 &&
        st->model_consumed_s >= st->spec.deadline_model_s) {
      st->error = "deadline exceeded before phase " +
                  st->spec.phases[st->next_phase].name;
      settle_locked(t, t.queue.begin(), JobStatus::kDeadlineExceeded,
                    CancelReason::kDeadline);
      continue;
    }
    break;
  }
}

bool JobServer::pick_next_locked(Work& w) {
  if (tenants_.empty()) return false;
  const std::size_t n = tenants_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Tenant& t = *tenants_[(rr_ + i) % n];
    sweep_locked(t);
    if (t.queue.empty()) continue;
    w.tenant = &t;
    w.job = t.queue.front();
    w.phase = &w.job->spec.phases[w.job->next_phase];
    // Arm-time budgets, computed here so execute() reads no scheduler-owned
    // job state outside mu_: what remains of the modeled deadline, and the
    // per-phase wall watchdog.
    const JobSpec& spec = w.job->spec;
    w.model_budget_s = spec.deadline_model_s > 0
                           ? spec.deadline_model_s - w.job->model_consumed_s
                           : 0;
    w.wall_budget_s =
        spec.wall_timeout_s > 0 ? spec.wall_timeout_s : opt_.watchdog_wall_s;
    rr_ = ((rr_ + i) % n) + 1;  // fairness: next round starts after us
    return true;
  }
  return false;
}

void JobServer::execute(Work& w) {
  Tenant& t = *w.tenant;
  w.before = machine_.totals();
  w.stager_before = machine_.stager_stats();
  w.faults_before = machine_.fault_stats();
  w.job->status.store(static_cast<int>(JobStatus::kRunning),
                      std::memory_order_release);

  w.job->token.arm_phase(w.model_budget_s, w.wall_budget_s);
  t.arena.install();
  machine_.set_cancel_token(&w.job->token);
  machine_.begin_phase("tenant/" + t.name + "/" + w.job->spec.name + "/" +
                       w.phase->name);
  JobContext ctx{machine_, t.arena};
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Server-owned fault sites, consulted once per phase. slow_phase
    // charges *modeled* stall, so a seeded schedule advances the
    // deterministic deadline clock; stuck_dma burns *host* time (a wedged
    // engine the model cannot see), which only the wall watchdog catches.
    if (FaultInjector* fi = machine_.fault_injector()) {
      machine_.charge_stall(0,
                            fi->consult_stall(fault_site::kServerSlowPhase));
      const double wedge = fi->consult_stall(fault_site::kServerStuckDma);
      if (wedge > 0)
        std::this_thread::sleep_for(std::chrono::duration<double>(wedge));
    }
    machine_.poll_cancel();  // entry checkpoint: pre-stalled phases stop here
    w.phase->fn(ctx);
    machine_.poll_cancel();  // exit checkpoint: requests no inner poll saw
  } catch (const CancelledError& e) {
    w.cancelled = true;
    w.reason = e.reason();
    w.error = e.what();
  } catch (const ScratchpadError& e) {
    w.failed = true;
    w.faulted = true;
    w.error = e.what();
  } catch (const std::exception& e) {
    w.failed = true;
    w.error = e.what();
  } catch (...) {
    w.failed = true;
    w.error = "unknown exception";
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (w.cancelled || w.failed) {
    // Leak-free unwinding: the phase body died before its own frees, so
    // hand back every quota-charged allocation now — while the gate is
    // still installed and before end_phase() audits the phase for leaks.
    w.reclaimed = t.arena.reclaim();
  }
  machine_.end_phase();
  machine_.set_cancel_token(nullptr);
  t.arena.uninstall();
  w.job->token.disarm();

  w.after = machine_.totals();
  w.stager_after = machine_.stager_stats();
  w.faults_after = machine_.fault_stats();
  w.host_s = std::chrono::duration<double>(t1 - t0).count();
}

void JobServer::finish_locked(Work& w) {
  Tenant& t = *w.tenant;
  // Traffic between the previous bracketed phase and this one ran outside
  // any tenant (direct Machine use by the embedding program); keep it in a
  // separate bucket so attribution stays conservative, not approximate.
  untenanted_ += phase_delta(w.before, last_snapshot_);
  const PhaseStats attributed = phase_delta(w.after, w.before);
  t.attributed += attributed;
  t.stager += stager_delta(w.stager_after, w.stager_before);
  t.faults += fault_delta(w.faults_after, w.faults_before);
  last_snapshot_ = w.after;
  t.phase_seconds.push_back(w.host_s);
  t.phase_model_seconds.push_back(attributed.seconds);
  ++t.phases_run;
  w.job->model_consumed_s += attributed.seconds;
  lifecycle_.reclaimed_bytes += w.reclaimed;

  const auto front = t.queue.begin();  // == w.job: the combiner is serial
  if (w.cancelled) {
    w.job->error = w.error;
    const bool timed_out = w.reason == CancelReason::kDeadline ||
                           w.reason == CancelReason::kWatchdog;
    settle_locked(t, front,
                  timed_out ? JobStatus::kDeadlineExceeded
                            : JobStatus::kCancelled,
                  w.reason);
    return;
  }
  if (w.failed) {
    if (w.faulted) ++w.job->fault_trips;
    if (w.faulted && w.job->fault_trips >= opt_.quarantine_fault_trips) {
      // Containment: this job keeps hitting fault sites — stop feeding it
      // admission slots and settle it out of the way.
      w.job->error = w.error;
      settle_locked(t, front, JobStatus::kQuarantined, CancelReason::kNone);
      return;
    }
    if (w.job->retries_used < w.job->spec.max_retries) {
      // Bounded retry: back to phase 0 with a clean arena (execute()
      // already reclaimed the unwound charge).
      ++w.job->retries_used;
      ++t.job_retries;
      ++lifecycle_.retries;
      w.job->next_phase = 0;
      w.job->status.store(static_cast<int>(JobStatus::kQueued),
                          std::memory_order_release);
      return;
    }
    w.job->error = w.error;
    settle_locked(t, front, JobStatus::kFailed, CancelReason::kNone);
    return;
  }
  ++w.job->next_phase;
  if (w.job->next_phase == w.job->spec.phases.size()) {
    settle_locked(t, front, JobStatus::kDone, CancelReason::kNone);
    return;
  }
  if (w.job->spec.deadline_model_s > 0 &&
      w.job->model_consumed_s >= w.job->spec.deadline_model_s) {
    // The phase finished but spent the whole budget: the remaining phases
    // will not run, and any retained cross-phase allocation is reclaimed.
    w.job->error = "deadline exceeded after phase " + w.phase->name;
    settle_locked(t, front, JobStatus::kDeadlineExceeded,
                  CancelReason::kDeadline);
    return;
  }
  w.job->status.store(static_cast<int>(JobStatus::kQueued),
                      std::memory_order_release);
}

std::size_t JobServer::combine(std::size_t max_phases,
                               const std::function<bool()>& stop) {
  std::size_t ran = 0;
  while (ran < max_phases && !stop()) {
    Work w;
    {
      MutexLock lock(mu_);
      if (!pick_next_locked(w)) break;
    }
    execute(w);
    {
      MutexLock lock(mu_);
      finish_locked(w);
    }
    cv_.notify_all();
    ++ran;
  }
  {
    MutexLock lock(mu_);
    combining_ = false;
  }
  cv_.notify_all();
  return ran;
}

JobHandle JobServer::submit(JobSpec spec) {
  auto st = std::make_shared<JobHandle::State>();
  st->spec = std::move(spec);
  JobHandle h;
  h.st_ = st;
  h.srv_ = this;

  std::uint32_t attempt = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      TLM_REQUIRE(accepting_, "submit after shutdown");
      Tenant* tenant = nullptr;
      for (const auto& t : tenants_)
        if (t->name == st->spec.tenant) tenant = t.get();
      TLM_REQUIRE(tenant != nullptr, "submit: unregistered tenant");
      if (outstanding_ < opt_.max_outstanding &&
          tenant->queue.size() < opt_.max_queue_per_tenant) {
        tenant->queue.push_back(st);
        ++outstanding_;
        ++tenant->admissions;
        return h;
      }
      ++attempt;
      ++tenant->backoff_stalls;
      if (attempt > opt_.admission_retry_budget) {
        ++tenant->rejections;
        st->status.store(static_cast<int>(JobStatus::kRejected),
                         std::memory_order_release);
        return h;
      }
    }
    // Bounded deterministic backoff: instead of sleeping, the submitter
    // helps drain the queues — up to 2^attempt scheduling rounds as the
    // combiner — so each retry is preceded by real forward progress. When
    // another thread already holds the combiner role, block until it hands
    // the role off (its finish rounds notify the cv).
    if (become_combiner()) {
      combine(std::size_t{1} << std::min<std::uint32_t>(attempt, 10),
              [] { return false; });
    } else {
      UniqueLock lock(mu_);
      cv_.wait(lock.native(), [this] { return !combining_now(); });
    }
  }
}

void JobServer::wait_settled(const std::shared_ptr<JobHandle::State>& st) {
  while (!settled(st)) {
    if (become_combiner()) {
      combine(~std::size_t{0}, [&st] { return settled(st); });
    } else {
      UniqueLock lock(mu_);
      cv_.wait(lock.native(),
               [this, &st] { return settled(st) || !combining_now(); });
    }
  }
}

void JobServer::drain() {
  for (;;) {
    if (become_combiner()) {
      combine(~std::size_t{0}, [] { return false; });
      MutexLock lock(mu_);
      if (outstanding_ == 0) {
        check_attribution_locked();
        return;
      }
    } else {
      UniqueLock lock(mu_);
      cv_.wait(lock.native(), [this] { return !combining_now(); });
    }
  }
}

void JobServer::shutdown(ShutdownMode mode) {
  {
    MutexLock lock(mu_);
    TLM_REQUIRE(accepting_, "shutdown: server already shut down");
    accepting_ = false;
    if (mode == ShutdownMode::kAbort) {
      // Sweep a shutdown-cancel through every admitted job, including the
      // front ones mid-run — they unwind at their next checkpoint. The
      // drain below then settles everything kCancelled with its quota
      // reclaimed. Jobs whose tokens already carry a reason keep it.
      for (const auto& t : tenants_)
        for (const auto& st : t->queue) st->token.request(CancelReason::kShutdown);
    }
  }
  cv_.notify_all();
  drain();
}

bool JobServer::accepting() const {
  MutexLock lock(mu_);
  return accepting_;
}

JobServer::LifecycleStats JobServer::lifecycle_stats() const {
  MutexLock lock(mu_);
  return lifecycle_;
}

void JobServer::request_cancel(const std::shared_ptr<JobHandle::State>& st) {
  {
    MutexLock lock(mu_);
    ++lifecycle_.cancel_requested;
  }
  st->token.request(CancelReason::kCancelled);
  // Wake combiner-role waiters so somebody sweeps the queues soon; the
  // caller observes the settlement through wait().
  cv_.notify_all();
}

void JobServer::check_attribution_locked() {
#if TLM_MODEL_CHECKS_ENABLED
  // Conservation: every byte the machine counted since the server started
  // must be attributed to exactly one tenant or the untenanted bucket.
  // The tail delta covers traffic after the last bracketed phase.
  const PhaseStats grand = machine_.totals();
  PhaseStats sum = untenanted_;
  for (const auto& t : tenants_) sum += t->attributed;
  sum += phase_delta(grand, last_snapshot_);
  const auto bad = [](const char* what, std::uint64_t attributed,
                      std::uint64_t total) {
    model_check_fail(model_rule::kTenantAttribution, "(drain)",
                     std::string(what) + ": tenant attribution sums to " +
                         std::to_string(attributed) +
                         " but the machine counted " + std::to_string(total) +
                         " — a scheduled phase escaped its snapshots",
                     std::source_location::current());
  };
  if (sum.far_read_bytes != grand.far_read_bytes)
    bad("far_read_bytes", sum.far_read_bytes, grand.far_read_bytes);
  if (sum.far_write_bytes != grand.far_write_bytes)
    bad("far_write_bytes", sum.far_write_bytes, grand.far_write_bytes);
  if (sum.near_read_bytes != grand.near_read_bytes)
    bad("near_read_bytes", sum.near_read_bytes, grand.near_read_bytes);
  if (sum.near_write_bytes != grand.near_write_bytes)
    bad("near_write_bytes", sum.near_write_bytes, grand.near_write_bytes);
  if (sum.far_blocks != grand.far_blocks)
    bad("far_blocks", sum.far_blocks, grand.far_blocks);
  if (sum.near_blocks != grand.near_blocks)
    bad("near_blocks", sum.near_blocks, grand.near_blocks);
  if (sum.far_bursts != grand.far_bursts)
    bad("far_bursts", sum.far_bursts, grand.far_bursts);
  if (sum.near_bursts != grand.near_bursts)
    bad("near_bursts", sum.near_bursts, grand.near_bursts);
  if (sum.dma_far_bytes != grand.dma_far_bytes)
    bad("dma_far_bytes", sum.dma_far_bytes, grand.dma_far_bytes);
  if (sum.dma_near_bytes != grand.dma_near_bytes)
    bad("dma_near_bytes", sum.dma_near_bytes, grand.dma_near_bytes);
#endif
}

TenantStats JobServer::tenant_stats(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& t : tenants_) {
    if (t->name != name) continue;
    TenantStats s;
    s.tenant = t->name;
    s.quota_bytes = t->arena.quota_bytes();
    s.admissions = t->admissions;
    s.rejections = t->rejections;
    s.backoff_stalls = t->backoff_stalls;
    s.quota_denials = t->arena.quota_denials();
    s.high_water_bytes = t->arena.high_water_bytes();
    s.jobs_completed = t->jobs_completed;
    s.jobs_failed = t->jobs_failed;
    s.jobs_cancelled = t->jobs_cancelled;
    s.jobs_deadline_exceeded = t->jobs_deadline_exceeded;
    s.jobs_quarantined = t->jobs_quarantined;
    s.job_retries = t->job_retries;
    s.foreign_frees = t->arena.foreign_frees();
    s.reclaimed_bytes = t->arena.reclaimed_bytes();
    s.phases_run = t->phases_run;
    s.degrade_level = t->stager.degrade_to_direct > 0   ? 2
                      : t->stager.degrade_to_single > 0 ? 1
                                                        : 0;
    s.attributed = t->attributed;
    s.stager = t->stager;
    s.faults = t->faults;
    s.phase_seconds = t->phase_seconds;
    s.phase_model_seconds = t->phase_model_seconds;
    return s;
  }
  TLM_REQUIRE(false, "tenant_stats: unregistered tenant");
  return {};
}

std::vector<std::string> JobServer::tenant_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t->name);
  return out;
}

void JobServer::export_metrics(obs::MetricsRegistry& reg) const {
  MutexLock lock(mu_);
  for (const auto& t : tenants_) {
    const std::string p = "tenant." + t->name + ".";
    reg.counter(p + "quota_bytes").add(t->arena.quota_bytes());
    reg.counter(p + "admissions").add(t->admissions);
    reg.counter(p + "rejections").add(t->rejections);
    reg.counter(p + "backoff_stalls").add(t->backoff_stalls);
    reg.counter(p + "quota_denials").add(t->arena.quota_denials());
    reg.counter(p + "high_water_bytes").add(t->arena.high_water_bytes());
    reg.counter(p + "jobs_completed").add(t->jobs_completed);
    reg.counter(p + "jobs_failed").add(t->jobs_failed);
    reg.counter(p + "jobs_cancelled").add(t->jobs_cancelled);
    reg.counter(p + "jobs_deadline_exceeded").add(t->jobs_deadline_exceeded);
    reg.counter(p + "jobs_quarantined").add(t->jobs_quarantined);
    reg.counter(p + "job_retries").add(t->job_retries);
    reg.counter(p + "foreign_free").add(t->arena.foreign_frees());
    reg.counter(p + "reclaimed_bytes").add(t->arena.reclaimed_bytes());
    reg.counter(p + "phases").add(t->phases_run);
    reg.counter(p + "attributed_far_bytes").add(t->attributed.far_bytes());
    reg.counter(p + "attributed_near_bytes").add(t->attributed.near_bytes());
    reg.counter(p + "degrade_to_single").add(t->stager.degrade_to_single);
    reg.counter(p + "degrade_to_direct").add(t->stager.degrade_to_direct);
    reg.set_gauge(p + "degrade_level",
                  t->stager.degrade_to_direct > 0   ? 2
                  : t->stager.degrade_to_single > 0 ? 1
                                                    : 0);
  }
  // Server-wide lifecycle counters — the run-report surface the CI
  // determinism gate diffs with --max-changed=0 (watchdog_fired is wall-
  // clock-driven and only deterministic when no watchdog is armed).
  reg.counter("cancel.requested").add(lifecycle_.cancel_requested);
  reg.counter("cancel.settled").add(lifecycle_.cancelled);
  reg.counter("cancel.shutdown").add(lifecycle_.shutdown_cancelled);
  reg.counter("deadline.expired").add(lifecycle_.deadline_expired);
  reg.counter("deadline.watchdog").add(lifecycle_.watchdog_fired);
  reg.counter("quarantine.settled").add(lifecycle_.quarantined);
  reg.counter("retry.attempts").add(lifecycle_.retries);
  reg.counter("lifecycle.reclaimed_bytes").add(lifecycle_.reclaimed_bytes);
}

}  // namespace tlm::server
