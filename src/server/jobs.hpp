// Canned JobSpec factories for the workloads this repository ships: the
// five sort backends of the differential harness and the staged k-means.
// Tests and benches submit these against a JobServer; each factory splits
// its work into generate / run / check phases so the fair scheduler has
// real interleaving points, and each records its output so callers can
// compare multi-tenant runs bit-for-bit against solo runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kmeans/kmeans.hpp"
#include "server/job_server.hpp"

namespace tlm::server {

// The five sort backends (mirrors the analysis::Algorithm dispatch without
// dragging the analysis/sim/trace stack into the server library).
enum class SortBackend {
  kGnu,            // single-level parallel multiway mergesort baseline
  kNMsort,         // §IV-D practical near-memory sort
  kScratchpadSeq,  // §III sequential recursive sort
  kScratchpadPar,  // §IV-C theoretical parallel sort
  kWriteEff,       // write-efficient NMsort (asymmetric ω variant)
};

inline constexpr SortBackend kSortBackends[] = {
    SortBackend::kGnu, SortBackend::kNMsort, SortBackend::kScratchpadSeq,
    SortBackend::kScratchpadPar, SortBackend::kWriteEff};

const char* to_string(SortBackend b);

struct SortJobResult {
  std::vector<std::uint64_t> input;   // the generated keys
  std::vector<std::uint64_t> output;  // the backend's sorted output
  bool verified = false;              // output == std::sort(input)
};

// Phases: gen (deterministic keys from `seed`), sort, check. `result` must
// outlive the job; the same (backend, n, seed) always produces the same
// input and — because every backend is a correct sort — the same output,
// which is what makes solo-vs-multi-tenant differential comparison exact.
JobSpec make_sort_job(std::string tenant, std::string name, SortBackend b,
                      std::size_t n, std::uint64_t seed,
                      std::shared_ptr<SortJobResult> result);

struct KMeansJobResult {
  std::vector<double> points;
  kmeans::KMeansResult result;
};

// Phases: gen (make_blobs), cluster (kmeans_staged — bit-identical across
// staging/degradation decisions by construction, see kmeans.hpp).
JobSpec make_kmeans_job(std::string tenant, std::string name, std::size_t n,
                        std::size_t dims, std::size_t k, std::uint64_t seed,
                        std::shared_ptr<KMeansJobResult> result);

}  // namespace tlm::server
