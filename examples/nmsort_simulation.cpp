// Cycle-level simulation walkthrough: capture an NMsort run as an
// Ariel-style trace and replay it on the Fig. 5/7 node model.
//
//   $ ./examples/nmsort_simulation [n] [rho] [cores]
//
// Shows the full co-design loop the paper describes: algorithm -> trace ->
// architectural simulation -> Table I metrics, plus the cross-check against
// the analytic counting backend.
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace tlm;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 200'000;
  const double rho = argc > 2 ? std::strtod(argv[2], nullptr) : 4.0;
  const std::size_t cores =
      argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 8;

  std::cout << "capturing NMsort trace: n=" << n << " rho=" << rho
            << " cores=" << cores << "\n";

  // One call runs the algorithm natively, records its memory behaviour,
  // builds the scaled node (x:y ratio of the paper's 256-core machine), and
  // replays the trace cycle-level.
  const analysis::SimulatedSort s = analysis::simulate_sort(
      rho, cores, n, /*near_capacity=*/1 * MiB, analysis::Algorithm::NMsort,
      /*seed=*/7);

  std::cout << "sorted output verified: "
            << (s.counting.verified ? "yes" : "NO") << "\n";

  Table t("cycle-level replay vs analytic counting model");
  t.header({"metric", "cycle sim", "counting model"});
  t.row({"time (ms)", Table::num(s.report.seconds * 1e3, 3),
         Table::num(s.counting.modeled_seconds * 1e3, 3)});
  t.row({"DRAM accesses (64B lines)", Table::count(s.report.far.accesses()),
         Table::count(s.counting.counting.far_accesses(64))});
  t.row({"scratchpad accesses", Table::count(s.report.near.accesses()),
         Table::count(s.counting.counting.near_accesses(64))});
  t.row({"DES events", Table::count(s.report.events), "-"});
  t.row({"L1 hit rate", Table::pct(s.report.l1.hit_rate()), "-"});
  t.row({"L2 hit rate", Table::pct(s.report.l2.hit_rate()), "-"});
  t.row({"barrier epochs", Table::count(s.report.barrier_epochs), "-"});
  std::cout << t;

  std::cout << "request latency: mean "
            << Table::num(s.report.access_latency.mean() * 1e9, 0)
            << " ns, p50 " << Table::num(s.report.latency_hist.p50() * 1e9, 0)
            << " ns, p95 " << Table::num(s.report.latency_hist.p95() * 1e9, 0)
            << " ns, p99 " << Table::num(s.report.latency_hist.p99() * 1e9, 0)
            << " ns\n";
  std::cout << "far row-buffer hit rate: "
            << Table::pct(static_cast<double>(s.report.far.row_hits) /
                          std::max<std::uint64_t>(
                              1, s.report.far.row_hits +
                                     s.report.far.row_misses))
            << "\n";
  return s.counting.verified ? 0 : 1;
}
