// Scratchpad-aware k-means (§VII extension): cluster synthetic blobs with
// the points staged once into near memory vs streamed from DRAM every
// iteration.
//
//   $ ./examples/kmeans_clustering [points] [k] [rho]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "kmeans/kmeans.hpp"

int main(int argc, char** argv) {
  using namespace tlm;
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 50'000;
  const std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 8;
  const double rho = argc > 3 ? std::strtod(argv[3], nullptr) : 4.0;

  kmeans::KMeansOptions opt;
  opt.k = k;
  opt.dims = 4;
  opt.max_iters = 25;
  opt.seed = 99;

  const std::vector<double> points = kmeans::make_blobs(n, opt.dims, k, 42);
  std::cout << "clustering " << n << " points (" << opt.dims
            << "-dim) into k=" << k << " clusters, rho=" << rho << "\n";

  TwoLevelConfig cfg = test_config(rho);
  cfg.near_capacity = 16 * MiB;
  cfg.far_bw = 2.0 * GB;
  cfg.core_rate = 8.0 * 1.7e9;  // vectorized multiply-adds
  cfg.threads = 4;

  Machine far_machine(cfg);
  Machine near_machine(cfg);
  const auto rf = kmeans::kmeans_far(far_machine, points, opt);
  const auto rn = kmeans::kmeans_near(near_machine, points, opt);

  Table t("k-means: DRAM-streaming vs scratchpad-resident");
  t.header({"variant", "iterations", "converged", "inertia/point",
            "modeled ms"});
  t.row({"far (baseline)", std::to_string(rf.iterations),
         rf.converged ? "yes" : "no",
         Table::num(rf.inertia / static_cast<double>(n), 2),
         Table::num(far_machine.elapsed_seconds() * 1e3, 3)});
  t.row({"near (scratchpad)", std::to_string(rn.iterations),
         rn.converged ? "yes" : "no",
         Table::num(rn.inertia / static_cast<double>(n), 2),
         Table::num(near_machine.elapsed_seconds() * 1e3, 3)});
  std::cout << t;

  const bool same = rf.centroids == rn.centroids;
  std::cout << "identical centroid trajectories: " << (same ? "yes" : "NO")
            << "\nspeedup: "
            << Table::num(far_machine.elapsed_seconds() /
                              near_machine.elapsed_seconds(),
                          2)
            << "x (paper §VII: 'a factor of rho faster' when "
               "bandwidth-bound)\n";
  return same ? 0 : 1;
}
