// Quickstart: sort 64-bit keys on a user-controlled two-level memory node.
//
//   $ ./examples/quickstart [n]
//
// Walks through the core API in ~60 lines: configure the node, create a
// Machine (far heap + scratchpad arena + cores + traffic accounting), run
// NMsort and the single-level baseline, and read the phase-level accounts.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "scratchpad/machine.hpp"
#include "sort/sort.hpp"

int main(int argc, char** argv) {
  using namespace tlm;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                 : 1'000'000;

  // 1. Describe the node: scratchpad capacity M, line size B, bandwidth
  //    expansion rho, far bandwidth, cores.
  TwoLevelConfig cfg;
  cfg.near_capacity = 4 * MiB;   // M
  cfg.block_bytes = 64;          // B
  cfg.rho = 4.0;                 // scratchpad = 4x DRAM bandwidth
  cfg.far_bw = 8.0 * GB;         // far-memory STREAM bandwidth
  cfg.cache_bytes = 128 * KiB;   // Z (drives run sizing / merge fan-in)
  cfg.threads = 4;               // p cores

  // 2. A Machine owns the two memory spaces and the worker pool.
  Machine machine(cfg);

  // 3. Far-resident input (any heap memory works; adopt_far registers it).
  std::vector<std::uint64_t> keys = random_keys(n, /*seed=*/2015);
  std::vector<std::uint64_t> sorted(n);

  // 4. Sort through the scratchpad (NMsort, §IV-D of the paper).
  sort::nm_sort_into(machine,
                     std::span<const std::uint64_t>(keys),
                     std::span<std::uint64_t>(sorted));
  machine.end_phase();

  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    std::cerr << "output is not sorted!\n";
    return 1;
  }

  // 5. Read the accounts: traffic and modeled time, per phase.
  const MachineStats st = machine.stats();
  Table t("NMsort on " + std::to_string(n) + " keys (rho=4)");
  t.header({"phase", "far MB", "near MB", "modeled ms"});
  for (const auto& ph : st.phases)
    t.row({ph.name, Table::num(ph.far_bytes() / 1e6, 1),
           Table::num(ph.near_bytes() / 1e6, 1),
           Table::num(ph.seconds * 1e3, 3)});
  t.row({"total", Table::num(st.total.far_bytes() / 1e6, 1),
         Table::num(st.total.near_bytes() / 1e6, 1),
         Table::num(st.total.seconds * 1e3, 3)});
  std::cout << t;

  // 6. Compare with the single-level baseline on an identical machine.
  Machine base(cfg);
  std::vector<std::uint64_t> copy = keys;
  sort::gnu_like_sort(base, std::span<std::uint64_t>(copy));
  base.end_phase();
  std::cout << "baseline (far memory only): "
            << Table::num(base.stats().total.seconds * 1e3, 3)
            << " ms modeled -> NMsort speedup "
            << Table::num(base.stats().total.seconds / st.total.seconds, 2)
            << "x\n";
  return 0;
}
