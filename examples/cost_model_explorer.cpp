// Cost-model explorer: evaluate the paper's closed-form bounds and the
// §V-A memory-boundedness predictor for a node you describe on the command
// line — the co-design "what if" tool.
//
//   $ ./examples/cost_model_explorer [--n=1e9] [--z-kib=512] [--m-mib=512]
//                                    [--b=64] [--cores=256] [--bw-gbs=60]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "memmodel/bounds.hpp"
#include "memmodel/membound.hpp"
#include "memmodel/params.hpp"

namespace {

double arg(int argc, char** argv, const char* name, double def) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::strtod(argv[i] + prefix.size(), nullptr);
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tlm;
  const double n = arg(argc, argv, "--n", 1e9);
  const double z_kib = arg(argc, argv, "--z-kib", 512);
  const double m_mib = arg(argc, argv, "--m-mib", 512);
  const double b = arg(argc, argv, "--b", 64);
  const double cores = arg(argc, argv, "--cores", 256);
  const double bw = arg(argc, argv, "--bw-gbs", 60) * 1e9;

  model::ScratchpadModel m;
  m.cache_z = static_cast<std::uint64_t>(z_kib * 1024 / 8);
  m.scratch_m = static_cast<std::uint64_t>(m_mib * 1024 * 1024 / 8);
  m.block_b = static_cast<std::uint64_t>(b / 8);
  m.cores_p = m.parallel_p = static_cast<std::uint64_t>(cores);

  std::cout << "node: Z=" << z_kib << "KiB M=" << m_mib << "MiB B=" << b
            << "B cores=" << cores << " far-bw=" << bw / 1e9 << "GB/s, N="
            << n << " 64-bit keys\n";

  Table t("sorting bounds (block transfers; constants = 1)");
  t.header({"rho", "Thm6 DRAM", "Thm6 scratch", "Thm6 total",
            "DRAM-only (Thm1)", "speedup", "parallel steps (Thm10)"});
  for (double rho : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    m.rho = rho;
    m.validate();
    const auto s = model::scratchpad_sort_bound(m, n);
    const auto p = model::parallel_scratchpad_sort_bound(m, n);
    const double base = model::sort_bound_multiway(
        n, static_cast<double>(m.cache_z), static_cast<double>(m.block_b));
    t.row({Table::num(rho, 0),
           Table::count(static_cast<std::uint64_t>(s.dram_transfers)),
           Table::count(static_cast<std::uint64_t>(s.scratch_transfers)),
           Table::count(static_cast<std::uint64_t>(s.total())),
           Table::count(static_cast<std::uint64_t>(base)),
           Table::num(base / s.total(), 3),
           Table::count(static_cast<std::uint64_t>(p.total()))});
  }
  std::cout << t;

  std::cout << "Corollary 7: quicksort-inside-scratchpad optimal once rho >= "
            << Table::num(model::corollary7_min_rho(m), 1) << "\n";

  // §V-A: is this node memory-bandwidth bound for sorting?
  const model::NodeThroughput node{cores * 1.7e9 / 8.0, bw / 8.0,
                                   z_kib * 1024 / b};
  const auto est = model::sort_time_estimate(node, n);
  std::cout << "§V-A predictor: x=" << node.compare_rate
            << " cmp/s, y=" << node.memory_rate << " elem/s, ratio="
            << Table::num(model::boundedness_ratio(node), 2) << " -> "
            << (est.memory_bound ? "memory-bandwidth bound" : "compute bound")
            << " (compute " << Table::num(est.compute_s, 3) << "s vs memory "
            << Table::num(est.memory_s, 3) << "s)\n";
  return 0;
}
