// Capture-once / replay-many: record an algorithm's memory-op trace to a
// file, then replay it on several architectural variants — the standard
// SST co-design workflow (the hardware does not need the application to
// re-run for every design point).
//
//   $ ./examples/trace_capture_replay [n] [trace-file]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/experiment.hpp"
#include "common/table.hpp"
#include "sim/system.hpp"
#include "trace/serialize.hpp"

int main(int argc, char** argv) {
  using namespace tlm;
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 200'000;
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/nmsort_rho4_8core.tlmtrace";
  constexpr std::size_t kCores = 8;
  constexpr double kCaptureRho = 4.0;

  // --- capture phase: run NMsort once, record its behaviour --------------
  const TwoLevelConfig cfg =
      analysis::scaled_counting_config(kCaptureRho, kCores, 1 * MiB);
  analysis::CaptureRun cap = analysis::capture_sort_trace(
      cfg, analysis::Algorithm::NMsort, n, /*seed=*/2015);
  if (!cap.counting.verified) {
    std::cerr << "sort output failed verification\n";
    return 1;
  }
  trace::save_trace_file(cap.trace, path);
  std::cout << "captured " << cap.trace.summary().total_ops()
            << " trace ops to " << path << " ("
            << cap.trace.describe() << ")\n\n";

  // --- replay phase: sweep hardware design points over the same trace ----
  const trace::TraceBuffer loaded = trace::load_trace_file(path);
  Table t("one trace, many machines (design-point sweep)");
  t.header({"design point", "sim time (ms)", "DRAM acc", "scratch acc",
            "p95 latency (ns)"});
  struct Point {
    const char* name;
    double rho;
    std::uint32_t outstanding;
  };
  for (const Point& p :
       {Point{"scratchpad 2x", 2.0, 16}, Point{"scratchpad 4x", 4.0, 16},
        Point{"scratchpad 8x", 8.0, 16},
        Point{"8x + deeper MLP (64 outstanding)", 8.0, 64}}) {
    sim::SystemConfig sys = sim::SystemConfig::scaled(p.rho, kCores);
    sys.core.max_outstanding = p.outstanding;
    sim::System system(sys, loaded);
    const sim::SimReport r = system.run();
    t.row({p.name, Table::num(r.seconds * 1e3, 3),
           Table::count(r.far.accesses()), Table::count(r.near.accesses()),
           Table::num(r.latency_hist.p95() * 1e9, 0)});
  }
  std::cout << t;
  std::cout << "note: the trace was captured at rho="
            << Table::num(kCaptureRho, 0)
            << "; replaying it at other rho values varies the hardware "
               "while holding the software's transfer schedule fixed.\n";
  std::remove(path.c_str());
  return 0;
}
